// Package capture is the measurement apparatus: a packet recorder attached
// at probe hosts (the Wireshark equivalent of the paper's methodology) and
// the paper's trace-matching rules.
//
// The paper matched data requests and replies "based on the IP addresses and
// transmission sub-piece sequence numbers", and matched each peer-list reply
// "to the latest request designated to the same IP address" (§3.1). Both
// rules are implemented verbatim over the recorded trace.
package capture

import (
	"fmt"
	"net/netip"
	"time"

	"pplivesim/internal/wire"
)

// Direction of a recorded datagram relative to the probe host.
type Direction int

// Directions.
const (
	In  Direction = iota + 1 // received by the probe
	Out                      // sent by the probe
)

// String returns "in" or "out".
func (d Direction) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Record is one captured datagram. Only protocol-relevant fields are
// retained (the paper similarly extracted per-connection information from
// raw packets).
type Record struct {
	At   time.Duration
	Dir  Direction
	Peer netip.Addr // the remote address
	Type wire.Type
	Size int

	// Data-plane fields (TDataRequest / TDataReply).
	Seq     uint64
	Count   uint16
	Payload int // payload bytes (replies)

	// Peer-list fields (TPeerListReply / TTrackerResponse): the returned
	// addresses, retained because the paper's Figures 2-5(a,b) count them
	// per ISP with duplicates.
	Addrs []netip.Addr
}

// Recorder accumulates a probe host's trace.
type Recorder struct {
	self    netip.Addr
	records []Record
}

// NewRecorder creates a recorder for the probe at self.
func NewRecorder(self netip.Addr) *Recorder {
	return &Recorder{self: self}
}

// Self returns the probe address.
func (r *Recorder) Self() netip.Addr { return r.self }

// Observe records one datagram. It is shaped to plug directly into
// simnet.Env taps via closures:
//
//	env.TapRecv(func(p netip.Addr, m wire.Message, n int) { rec.Observe(now(), capture.In, p, m, n) })
func (r *Recorder) Observe(at time.Duration, dir Direction, peerAddr netip.Addr, msg wire.Message, size int) {
	rec := Record{At: at, Dir: dir, Peer: peerAddr, Type: msg.Kind(), Size: size}
	switch m := msg.(type) {
	case *wire.DataRequest:
		rec.Seq, rec.Count = m.Seq, m.Count
	case *wire.DataReply:
		rec.Seq, rec.Count, rec.Payload = m.Seq, m.Count, m.PayloadLen()
	case *wire.PeerListReply:
		rec.Addrs = append([]netip.Addr(nil), m.Peers...)
	case *wire.TrackerResponse:
		rec.Addrs = append([]netip.Addr(nil), m.Peers...)
	case *wire.PeerListRequest:
		// Outgoing gossip requests matter for response-time matching; the
		// enclosed own-list is not analyzed (the paper analyzes returned
		// lists), so only the count is kept implicitly via Size.
	}
	r.records = append(r.records, rec)
}

// Records returns the trace in capture order. The returned slice is the
// recorder's backing store; callers must not mutate it.
func (r *Recorder) Records() []Record { return r.records }

// Len returns the number of captured datagrams.
func (r *Recorder) Len() int { return len(r.records) }

// Transmission is one matched data request/reply pair ("a data transmission
// consists of a pair of data request and reply", §3.2).
type Transmission struct {
	Peer   netip.Addr
	Seq    uint64
	ReqAt  time.Duration
	RepAt  time.Duration
	Bytes  int // payload bytes received
	Pieces int // sub-pieces received
}

// ResponseTime returns the request→reply latency.
func (t Transmission) ResponseTime() time.Duration { return t.RepAt - t.ReqAt }

// ListExchange is one matched peer-list request/reply pair.
type ListExchange struct {
	Peer  netip.Addr
	ReqAt time.Duration
	RepAt time.Duration
	Addrs []netip.Addr
	// Unsolicited marks a reply that arrived with no outstanding request
	// (seen for tracker responses, e.g. duplicates). ReqAt is synthesized as
	// the arrival time, so ResponseTime is zero and meaningless; consumers
	// computing response-time statistics must skip unsolicited exchanges.
	Unsolicited bool
}

// ResponseTime returns the request→reply latency.
func (e ListExchange) ResponseTime() time.Duration { return e.RepAt - e.ReqAt }

// Matched is the outcome of running the paper's matching rules over a trace.
type Matched struct {
	// Transmissions are matched data request/reply pairs in reply order.
	Transmissions []Transmission
	// UnansweredData counts data requests that never got a reply, including
	// earlier requests superseded by a retransmission of the same sub-piece
	// (the reply, if any, matches only the latest request).
	UnansweredData int
	// ListExchanges are matched peer-list request/reply pairs in reply
	// order, covering regular-peer gossip only.
	ListExchanges []ListExchange
	// UnansweredLists counts peer-list requests that never got a reply
	// (the paper notes "a non-trivial number of peer-list requests were not
	// answered").
	UnansweredLists int
	// TrackerLists are peer lists received from tracker servers (matched
	// trivially: tracker responses to our queries).
	TrackerLists []ListExchange
}

type dataKey struct {
	peer netip.Addr
	seq  uint64
}

// Match applies the paper's matching rules to a trace. trackers identifies
// tracker-server addresses so tracker responses are attributed separately
// from regular-peer referrals (the X_s vs X_p split of Figures 2-5(b)).
func Match(records []Record, trackers map[netip.Addr]bool) Matched {
	var out Matched

	// Data matching: key (peer, seq); replies consume the latest request.
	pendingData := make(map[dataKey]time.Duration)
	// Peer-list matching: reply matches the latest outstanding request to
	// the same address.
	pendingList := make(map[netip.Addr][]time.Duration)
	pendingTracker := make(map[netip.Addr][]time.Duration)

	for _, rec := range records {
		switch {
		case rec.Dir == Out && rec.Type == wire.TDataRequest:
			k := dataKey{rec.Peer, rec.Seq}
			if _, dup := pendingData[k]; dup {
				// A retransmission supersedes the pending request — the reply
				// matches the latest request (§3.1) — but the superseded
				// request still went unanswered and must stay in the tally.
				out.UnansweredData++
			}
			pendingData[k] = rec.At
		case rec.Dir == In && rec.Type == wire.TDataReply:
			k := dataKey{rec.Peer, rec.Seq}
			if reqAt, ok := pendingData[k]; ok {
				delete(pendingData, k)
				out.Transmissions = append(out.Transmissions, Transmission{
					Peer:   rec.Peer,
					Seq:    rec.Seq,
					ReqAt:  reqAt,
					RepAt:  rec.At,
					Bytes:  rec.Payload,
					Pieces: int(rec.Count),
				})
			}
		case rec.Dir == Out && rec.Type == wire.TPeerListRequest:
			pendingList[rec.Peer] = append(pendingList[rec.Peer], rec.At)
		case rec.Dir == In && rec.Type == wire.TPeerListReply:
			stack := pendingList[rec.Peer]
			if len(stack) == 0 {
				continue // unsolicited; real traces have these too
			}
			// "...match the peer list reply to the latest request
			// designated to the same IP address."
			reqAt := stack[len(stack)-1]
			pendingList[rec.Peer] = stack[:len(stack)-1]
			out.ListExchanges = append(out.ListExchanges, ListExchange{
				Peer:  rec.Peer,
				ReqAt: reqAt,
				RepAt: rec.At,
				Addrs: rec.Addrs,
			})
		case rec.Dir == Out && rec.Type == wire.TTrackerQuery:
			pendingTracker[rec.Peer] = append(pendingTracker[rec.Peer], rec.At)
		case rec.Dir == In && rec.Type == wire.TTrackerResponse:
			if !trackers[rec.Peer] {
				continue
			}
			stack := pendingTracker[rec.Peer]
			var reqAt time.Duration
			var unsolicited bool
			if len(stack) > 0 {
				reqAt = stack[len(stack)-1]
				pendingTracker[rec.Peer] = stack[:len(stack)-1]
			} else {
				// No outstanding query: a duplicate or stray response. Keep it
				// (its addresses still count for Figures 2-5) but flag it so
				// the synthesized ReqAt can never enter response-time stats.
				reqAt = rec.At
				unsolicited = true
			}
			out.TrackerLists = append(out.TrackerLists, ListExchange{
				Peer:        rec.Peer,
				ReqAt:       reqAt,
				RepAt:       rec.At,
				Addrs:       rec.Addrs,
				Unsolicited: unsolicited,
			})
		}
	}

	// Leftover pendings never got a reply; they add to the superseded
	// requests already counted during the scan.
	out.UnansweredData += len(pendingData)
	for _, stack := range pendingList {
		out.UnansweredLists += len(stack)
	}
	return out
}

// RTTEstimates returns the per-peer RTT estimate the paper uses (§3.5):
// the minimum application-level response time over all data transmissions
// involving that peer.
func RTTEstimates(transmissions []Transmission) map[netip.Addr]time.Duration {
	out := make(map[netip.Addr]time.Duration)
	for _, tx := range transmissions {
		rt := tx.ResponseTime()
		if cur, ok := out[tx.Peer]; !ok || rt < cur {
			out[tx.Peer] = rt
		}
	}
	return out
}
