package capture

import (
	"net/netip"
	"testing"
	"time"

	"pplivesim/internal/wire"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestObserveExtractsFields(t *testing.T) {
	r := NewRecorder(addr("58.32.0.1"))
	peer := addr("58.32.0.2")
	req := &wire.DataRequest{Channel: 1, Seq: 42, Count: 1}
	r.Observe(time.Second, Out, peer, req, wire.Size(req))
	rep := &wire.DataReply{Channel: 1, Seq: 42, Count: 1, PieceLen: 1380}
	r.Observe(2*time.Second, In, peer, rep, wire.Size(rep))
	list := &wire.PeerListReply{Channel: 1, Peers: []netip.Addr{addr("1.1.1.1"), addr("2.2.2.2")}}
	r.Observe(3*time.Second, In, peer, list, wire.Size(list))

	recs := r.Records()
	if len(recs) != 3 {
		t.Fatalf("captured %d records, want 3", len(recs))
	}
	if recs[0].Seq != 42 || recs[0].Dir != Out || recs[0].Type != wire.TDataRequest {
		t.Errorf("request record = %+v", recs[0])
	}
	if recs[1].Payload != 1380 {
		t.Errorf("reply payload = %d, want 1380", recs[1].Payload)
	}
	if len(recs[2].Addrs) != 2 {
		t.Errorf("list record addrs = %v", recs[2].Addrs)
	}
	if r.Len() != 3 || r.Self() != addr("58.32.0.1") {
		t.Errorf("Len/Self wrong: %d %v", r.Len(), r.Self())
	}
}

func TestMatchDataTransmissions(t *testing.T) {
	peer := addr("58.32.0.2")
	records := []Record{
		{At: 1 * time.Second, Dir: Out, Peer: peer, Type: wire.TDataRequest, Seq: 10},
		{At: 2 * time.Second, Dir: Out, Peer: peer, Type: wire.TDataRequest, Seq: 11},
		{At: 2500 * time.Millisecond, Dir: In, Peer: peer, Type: wire.TDataReply, Seq: 10, Count: 1, Payload: 1380},
		// Seq 11 never answered.
	}
	m := Match(records, nil)
	if len(m.Transmissions) != 1 {
		t.Fatalf("matched %d transmissions, want 1", len(m.Transmissions))
	}
	tx := m.Transmissions[0]
	if tx.Seq != 10 || tx.ResponseTime() != 1500*time.Millisecond || tx.Bytes != 1380 {
		t.Errorf("transmission = %+v", tx)
	}
	if m.UnansweredData != 1 {
		t.Errorf("unanswered = %d, want 1", m.UnansweredData)
	}
}

func TestMatchSameSeqDifferentPeers(t *testing.T) {
	p1, p2 := addr("58.32.0.2"), addr("60.0.0.2")
	records := []Record{
		{At: 1 * time.Second, Dir: Out, Peer: p1, Type: wire.TDataRequest, Seq: 10},
		{At: 1 * time.Second, Dir: Out, Peer: p2, Type: wire.TDataRequest, Seq: 10},
		{At: 2 * time.Second, Dir: In, Peer: p2, Type: wire.TDataReply, Seq: 10, Count: 1, Payload: 1380},
	}
	m := Match(records, nil)
	if len(m.Transmissions) != 1 || m.Transmissions[0].Peer != p2 {
		t.Fatalf("matching crossed peers: %+v", m.Transmissions)
	}
	if m.UnansweredData != 1 {
		t.Errorf("unanswered = %d, want 1 (p1's request)", m.UnansweredData)
	}
}

// TestMatchRetransmissionCountsSupersededRequest is the regression pin for
// the UnansweredData undercount: a retransmitted data request used to
// silently overwrite the earlier pending entry, so the superseded — and
// forever unanswered — first request vanished from the tally. The reply must
// still match the latest request (§3.1), but the count must be 1, not 0.
// This test fails against the pre-fix Match.
func TestMatchRetransmissionCountsSupersededRequest(t *testing.T) {
	peer := addr("58.32.0.2")
	records := []Record{
		{At: 1 * time.Second, Dir: Out, Peer: peer, Type: wire.TDataRequest, Seq: 10},
		// Retransmission of the same sub-piece to the same peer.
		{At: 3 * time.Second, Dir: Out, Peer: peer, Type: wire.TDataRequest, Seq: 10},
		{At: 3500 * time.Millisecond, Dir: In, Peer: peer, Type: wire.TDataReply, Seq: 10, Count: 1, Payload: 1380},
	}
	m := Match(records, nil)
	if len(m.Transmissions) != 1 {
		t.Fatalf("matched %d transmissions, want 1", len(m.Transmissions))
	}
	// Match-to-latest: the reply pairs with the 3s retransmission.
	if got := m.Transmissions[0].ResponseTime(); got != 500*time.Millisecond {
		t.Errorf("response time = %v, want 500ms (reply matches the retransmission)", got)
	}
	if m.UnansweredData != 1 {
		t.Errorf("unanswered = %d, want 1 (the superseded 1s request never got a reply)", m.UnansweredData)
	}

	// Two retransmissions, no reply at all: all three requests unanswered.
	records = []Record{
		{At: 1 * time.Second, Dir: Out, Peer: peer, Type: wire.TDataRequest, Seq: 10},
		{At: 2 * time.Second, Dir: Out, Peer: peer, Type: wire.TDataRequest, Seq: 10},
		{At: 3 * time.Second, Dir: Out, Peer: peer, Type: wire.TDataRequest, Seq: 10},
	}
	if m := Match(records, nil); m.UnansweredData != 3 {
		t.Errorf("unanswered = %d, want 3", m.UnansweredData)
	}
}

// TestMatchUnsolicitedTrackerResponseFlagged pins the fix for synthesized
// zero-duration tracker response times: a response with no outstanding query
// keeps its addresses (Figures 2-5 count them) but is flagged Unsolicited so
// its meaningless ResponseTime can never enter timing statistics.
func TestMatchUnsolicitedTrackerResponseFlagged(t *testing.T) {
	trk := addr("61.128.0.1")
	trackers := map[netip.Addr]bool{trk: true}
	records := []Record{
		// Stray response with no query outstanding.
		{At: 1 * time.Second, Dir: In, Peer: trk, Type: wire.TTrackerResponse,
			Addrs: []netip.Addr{addr("1.1.1.1")}},
		// A solicited exchange afterwards.
		{At: 2 * time.Second, Dir: Out, Peer: trk, Type: wire.TTrackerQuery},
		{At: 2500 * time.Millisecond, Dir: In, Peer: trk, Type: wire.TTrackerResponse,
			Addrs: []netip.Addr{addr("2.2.2.2")}},
	}
	m := Match(records, trackers)
	if len(m.TrackerLists) != 2 {
		t.Fatalf("tracker lists = %d, want 2", len(m.TrackerLists))
	}
	stray, solicited := m.TrackerLists[0], m.TrackerLists[1]
	if !stray.Unsolicited {
		t.Error("stray tracker response not flagged Unsolicited")
	}
	if stray.ResponseTime() != 0 {
		t.Errorf("stray response time = %v, want 0 (synthesized)", stray.ResponseTime())
	}
	if len(stray.Addrs) != 1 {
		t.Errorf("stray list addrs = %v, want kept", stray.Addrs)
	}
	if solicited.Unsolicited {
		t.Error("solicited tracker response flagged Unsolicited")
	}
	if got := solicited.ResponseTime(); got != 500*time.Millisecond {
		t.Errorf("solicited response time = %v, want 500ms", got)
	}
}

func TestMatchPeerListLatestRequestRule(t *testing.T) {
	peer := addr("58.32.0.2")
	records := []Record{
		{At: 1 * time.Second, Dir: Out, Peer: peer, Type: wire.TPeerListRequest},
		{At: 21 * time.Second, Dir: Out, Peer: peer, Type: wire.TPeerListRequest},
		{At: 22 * time.Second, Dir: In, Peer: peer, Type: wire.TPeerListReply,
			Addrs: []netip.Addr{addr("1.1.1.1")}},
	}
	m := Match(records, nil)
	if len(m.ListExchanges) != 1 {
		t.Fatalf("matched %d list exchanges, want 1", len(m.ListExchanges))
	}
	// Reply must match the LATEST request (21s), not the first.
	if got := m.ListExchanges[0].ResponseTime(); got != time.Second {
		t.Errorf("response time = %v, want 1s (latest-request rule)", got)
	}
	if m.UnansweredLists != 1 {
		t.Errorf("unanswered lists = %d, want 1", m.UnansweredLists)
	}
}

func TestMatchUnsolicitedListReplyIgnored(t *testing.T) {
	peer := addr("58.32.0.2")
	records := []Record{
		{At: 1 * time.Second, Dir: In, Peer: peer, Type: wire.TPeerListReply,
			Addrs: []netip.Addr{addr("1.1.1.1")}},
	}
	m := Match(records, nil)
	if len(m.ListExchanges) != 0 {
		t.Errorf("unsolicited reply matched: %+v", m.ListExchanges)
	}
}

func TestMatchTrackerLists(t *testing.T) {
	trk := addr("61.128.0.1")
	notTrk := addr("58.32.0.2")
	trackers := map[netip.Addr]bool{trk: true}
	records := []Record{
		{At: 1 * time.Second, Dir: Out, Peer: trk, Type: wire.TTrackerQuery},
		{At: 1500 * time.Millisecond, Dir: In, Peer: trk, Type: wire.TTrackerResponse,
			Addrs: []netip.Addr{addr("1.1.1.1"), addr("2.2.2.2")}},
		// A tracker response from a non-tracker address is ignored.
		{At: 2 * time.Second, Dir: In, Peer: notTrk, Type: wire.TTrackerResponse,
			Addrs: []netip.Addr{addr("3.3.3.3")}},
	}
	m := Match(records, trackers)
	if len(m.TrackerLists) != 1 {
		t.Fatalf("tracker lists = %d, want 1", len(m.TrackerLists))
	}
	if got := m.TrackerLists[0].ResponseTime(); got != 500*time.Millisecond {
		t.Errorf("tracker response time = %v", got)
	}
	if len(m.TrackerLists[0].Addrs) != 2 {
		t.Errorf("tracker list addrs = %v", m.TrackerLists[0].Addrs)
	}
}

func TestRTTEstimatesTakeMinimum(t *testing.T) {
	p1, p2 := addr("58.32.0.2"), addr("60.0.0.2")
	txs := []Transmission{
		{Peer: p1, ReqAt: 0, RepAt: 100 * time.Millisecond},
		{Peer: p1, ReqAt: time.Second, RepAt: time.Second + 40*time.Millisecond},
		{Peer: p1, ReqAt: 2 * time.Second, RepAt: 2*time.Second + 900*time.Millisecond},
		{Peer: p2, ReqAt: 0, RepAt: 300 * time.Millisecond},
	}
	est := RTTEstimates(txs)
	if got := est[p1]; got != 40*time.Millisecond {
		t.Errorf("p1 RTT = %v, want 40ms (minimum)", got)
	}
	if got := est[p2]; got != 300*time.Millisecond {
		t.Errorf("p2 RTT = %v, want 300ms", got)
	}
}

func TestMatchEmptyTrace(t *testing.T) {
	m := Match(nil, nil)
	if len(m.Transmissions) != 0 || len(m.ListExchanges) != 0 || m.UnansweredData != 0 {
		t.Errorf("empty trace produced matches: %+v", m)
	}
}
