package node_test

import (
	"net/netip"
	"testing"
	"time"

	"pplivesim/internal/isp"
	"pplivesim/internal/node"
	"pplivesim/internal/simnet"
	"pplivesim/internal/wire"
)

func TestHandlerFuncForwards(t *testing.T) {
	var gotFrom netip.Addr
	var gotMsg wire.Message
	h := node.HandlerFunc(func(from netip.Addr, msg wire.Message) {
		gotFrom, gotMsg = from, msg
	})
	from := netip.MustParseAddr("10.1.2.3")
	msg := &wire.Handshake{Channel: 9}
	h.HandleMessage(from, msg)
	if gotFrom != from {
		t.Errorf("from = %v, want %v", gotFrom, from)
	}
	if hs, ok := gotMsg.(*wire.Handshake); !ok || hs.Channel != 9 {
		t.Errorf("msg = %#v, want the handshake passed in", gotMsg)
	}
}

// spawn creates a simulated environment — the canonical Env implementation —
// for contract tests below.
func spawn(t *testing.T, w *simnet.World) *simnet.Env {
	t.Helper()
	env, err := w.Spawn(simnet.HostSpec{ISP: isp.TELE, UploadBps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// TestEnvContractTimers pins the Env timer semantics protocol code relies
// on: After fires once at the scheduled instant, Every fires repeatedly one
// period apart, and Cancel reports whether the timer was still pending.
func TestEnvContractTimers(t *testing.T) {
	w := simnet.NewWorld(1)
	env := spawn(t, w)

	var afterAt time.Duration
	env.After(50*time.Millisecond, func() { afterAt = env.Now() })

	var everyAt []time.Duration
	var stop node.Cancel
	stop = env.Every(20*time.Millisecond, func() {
		everyAt = append(everyAt, env.Now())
		if len(everyAt) == 3 {
			if !stop() {
				t.Error("cancelling a live periodic timer reported false")
			}
		}
	})

	cancelled := env.After(time.Second, func() { t.Error("cancelled timer fired") })
	if !cancelled() {
		t.Error("cancel of pending timer reported false")
	}
	if cancelled() {
		t.Error("second cancel reported true")
	}

	w.Engine.Run(2 * time.Second)

	if afterAt != 50*time.Millisecond {
		t.Errorf("After fired at %v, want 50ms", afterAt)
	}
	want := []time.Duration{20 * time.Millisecond, 40 * time.Millisecond, 60 * time.Millisecond}
	if len(everyAt) != len(want) {
		t.Fatalf("Every fired %d times (%v), want %d then cancel", len(everyAt), everyAt, len(want))
	}
	for i := range want {
		if everyAt[i] != want[i] {
			t.Errorf("Every firing %d at %v, want %v", i, everyAt[i], want[i])
		}
	}
}

// TestEnvContractSendAndRand exercises datagram exchange between two Envs
// through the node interfaces alone, and the determinism of Rand.
func TestEnvContractSendAndRand(t *testing.T) {
	w := simnet.NewWorld(7)
	a, b := spawn(t, w), spawn(t, w)
	if a.Addr() == b.Addr() {
		t.Fatalf("spawned nodes share address %v", a.Addr())
	}

	var got []wire.Message
	var from netip.Addr
	b.SetHandler(node.HandlerFunc(func(f netip.Addr, msg wire.Message) {
		from = f
		got = append(got, msg)
		// Reply through the same interface.
		b.Send(f, &wire.HandshakeAck{Channel: 3, Accepted: true})
	}))
	var acked bool
	a.SetHandler(node.HandlerFunc(func(f netip.Addr, msg wire.Message) {
		if ack, ok := msg.(*wire.HandshakeAck); ok && ack.Accepted && f == b.Addr() {
			acked = true
		}
	}))

	a.Send(b.Addr(), &wire.Handshake{Channel: 3})
	w.Engine.Run(5 * time.Second)

	if len(got) != 1 || from != a.Addr() {
		t.Fatalf("b received %d messages from %v, want 1 from %v", len(got), from, a.Addr())
	}
	if !acked {
		t.Error("a never received b's reply")
	}

	// Rand streams are deterministic per world seed and node spawn order.
	w2 := simnet.NewWorld(7)
	a2 := spawn(t, w2)
	r1, r2 := a.Rand(), a2.Rand()
	for i := 0; i < 8; i++ {
		if v1, v2 := r1.Uint64(), r2.Uint64(); v1 != v2 {
			t.Fatalf("draw %d differs across identically seeded worlds: %d vs %d", i, v1, v2)
		}
	}

	if a.UplinkBacklog() < 0 {
		t.Error("negative uplink backlog")
	}
}
