// Package node defines the runtime environment a protocol participant
// (peer, tracker, bootstrap server, stream source) runs in.
//
// Protocol logic is written against the Env interface — a clock for timers,
// a datagram sender, and a deterministic random stream — so the same
// implementation runs over the discrete-event simulated underlay
// (internal/simnet) and over real UDP sockets (internal/udpnet, used by the
// examples).
package node

import (
	"math/rand"
	"net/netip"
	"time"

	"pplivesim/internal/wire"
)

// Cancel stops a pending timer. It reports whether the timer had not yet
// fired.
type Cancel func() bool

// Env is the world as seen by one protocol node.
type Env interface {
	// Addr returns the node's own address.
	Addr() netip.Addr
	// Now returns the node's clock reading (virtual or wall time since the
	// environment started).
	Now() time.Duration
	// After schedules fn once, d from now.
	After(d time.Duration, fn func()) Cancel
	// Every schedules fn periodically, first firing one period from now.
	Every(d time.Duration, fn func()) Cancel
	// Rand returns the node's deterministic random stream.
	Rand() *rand.Rand
	// Send transmits a datagram to another node. Messages must not be
	// mutated after Send.
	Send(to netip.Addr, msg wire.Message)
	// UplinkBacklog reports how long the node's access uplink is currently
	// backed up (zero when idle). Serving policies use it to shed load.
	UplinkBacklog() time.Duration
}

// Handler consumes datagrams addressed to a node.
type Handler interface {
	HandleMessage(from netip.Addr, msg wire.Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from netip.Addr, msg wire.Message)

// HandleMessage implements Handler.
func (f HandlerFunc) HandleMessage(from netip.Addr, msg wire.Message) { f(from, msg) }
