package udpnet

import (
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"pplivesim/internal/wire"
)

// listen binds a test node, skipping if loopback aliases are unavailable.
func listen(t *testing.T, last byte, port uint16) *Node {
	t.Helper()
	n, err := Listen(netip.AddrFrom4([4]byte{127, 0, 0, last}), port)
	if err != nil {
		t.Skipf("loopback alias unavailable: %v", err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

type countingHandler struct {
	count atomic.Int64
	last  atomic.Value // wire.Type
}

func (h *countingHandler) HandleMessage(_ netip.Addr, msg wire.Message) {
	h.count.Add(1)
	h.last.Store(msg.Kind())
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestListenRejectsIPv6(t *testing.T) {
	if _, err := Listen(netip.MustParseAddr("::1"), 0); err == nil {
		t.Error("IPv6 address accepted")
	}
}

func TestSendReceiveOverLoopback(t *testing.T) {
	const port = 42811
	a := listen(t, 2, port)
	b := listen(t, 3, port)
	h := &countingHandler{}
	b.SetHandler(h)

	a.Send(b.Addr(), &wire.Handshake{Channel: 7})
	waitFor(t, func() bool { return h.count.Load() == 1 }, "datagram delivery")
	if got, _ := h.last.Load().(wire.Type); got != wire.THandshake {
		t.Errorf("delivered kind = %v", got)
	}
	sent, _, _ := a.Stats()
	if sent != 1 {
		t.Errorf("sender stats sent = %d", sent)
	}
	_, received, decodeErrs := b.Stats()
	if received != 1 || decodeErrs != 0 {
		t.Errorf("receiver stats = %d received %d decode errors", received, decodeErrs)
	}
}

func TestGarbageDatagramCounted(t *testing.T) {
	const port = 42812
	a := listen(t, 2, port)
	b := listen(t, 3, port)
	b.SetHandler(&countingHandler{})
	// Raw garbage straight through the socket.
	a.conn.WriteToUDP([]byte("not a protocol datagram"), b.udpAddr())
	waitFor(t, func() bool {
		_, _, errs := b.Stats()
		return errs == 1
	}, "decode-error accounting")
}

func TestTimersRunOnExecutor(t *testing.T) {
	const port = 42813
	a := listen(t, 2, port)
	var fired atomic.Int64
	a.After(20*time.Millisecond, func() { fired.Add(1) })
	cancel := a.Every(15*time.Millisecond, func() { fired.Add(1) })
	waitFor(t, func() bool { return fired.Load() >= 3 }, "timer firings")
	if !cancel() {
		t.Error("Every cancel returned false")
	}
	if cancel() {
		t.Error("second cancel returned true")
	}
}

func TestDoSynchronizes(t *testing.T) {
	const port = 42814
	a := listen(t, 2, port)
	value := 0
	a.Do(func() { value = 42 })
	if value != 42 {
		t.Error("Do did not complete synchronously")
	}
}

func TestCloseIdempotentAndStopsDelivery(t *testing.T) {
	const port = 42815
	a := listen(t, 2, port)
	b := listen(t, 3, port)
	h := &countingHandler{}
	b.SetHandler(h)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	a.Send(b.Addr(), &wire.Handshake{Channel: 1})
	time.Sleep(50 * time.Millisecond)
	if h.count.Load() != 0 {
		t.Error("closed node delivered a message")
	}
}
