// Package udpnet binds protocol nodes (internal/node) to real UDP sockets,
// so the exact same client, tracker, and source implementations that run in
// the discrete-event simulation also run over a genuine network stack.
//
// Peer identity in the wire protocol is a 4-byte IPv4 address, so each node
// binds its own loopback address (127.0.0.2, 127.0.0.3, ...) on a shared
// port — Linux routes the whole 127/8 block to the loopback interface
// without configuration. Every node runs a single-threaded executor
// goroutine; datagrams and timers post onto it, preserving the
// single-threaded semantics the protocol code was written against.
package udpnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"time"

	"pplivesim/internal/node"
	"pplivesim/internal/wire"
)

// DefaultPort is the shared UDP port all loopback nodes bind.
const DefaultPort = 42800

// Node is a protocol endpoint on a real UDP socket.
type Node struct {
	addr  netip.Addr
	port  uint16
	conn  *net.UDPConn
	start time.Time
	rng   *rand.Rand

	tasks chan func()
	done  chan struct{}
	wg    sync.WaitGroup

	mu      sync.Mutex
	handler node.Handler
	closed  bool

	// Stats.
	sent, received, decodeErrors uint64
}

var _ node.Env = (*Node)(nil)

// Listen binds a node at addr (e.g. 127.0.0.2) on the given port (0 means
// DefaultPort) and starts its executor and reader.
func Listen(addr netip.Addr, port uint16) (*Node, error) {
	if !addr.Is4() {
		return nil, fmt.Errorf("udpnet: address %v is not IPv4 (the wire protocol carries 4-byte addresses)", addr)
	}
	if port == 0 {
		port = DefaultPort
	}
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: addr.AsSlice(), Port: int(port)})
	if err != nil {
		return nil, fmt.Errorf("udpnet: listen %v:%d: %w", addr, port, err)
	}
	n := &Node{
		addr:  addr,
		port:  port,
		conn:  conn,
		start: time.Now(),
		rng:   rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(addr.As4()[3]))),
		tasks: make(chan func(), 1024),
		done:  make(chan struct{}),
	}
	n.wg.Add(2)
	go n.loop()
	go n.read()
	return n, nil
}

// Addr implements node.Env.
func (n *Node) Addr() netip.Addr { return n.addr }

// Now implements node.Env: wall time since the node started.
func (n *Node) Now() time.Duration { return time.Since(n.start) }

// Rand implements node.Env.
func (n *Node) Rand() *rand.Rand { return n.rng }

// UplinkBacklog implements node.Env; the kernel owns real socket queues, so
// the application-level backlog is reported as zero.
func (n *Node) UplinkBacklog() time.Duration { return 0 }

// SetHandler installs the message handler (called from the executor).
func (n *Node) SetHandler(h node.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handler = h
}

// Stats reports datagram counters.
func (n *Node) Stats() (sent, received, decodeErrors uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sent, n.received, n.decodeErrors
}

// post schedules fn on the executor; drops silently after Close.
func (n *Node) post(fn func()) {
	select {
	case n.tasks <- fn:
	case <-n.done:
	}
}

// loop is the single-threaded executor.
func (n *Node) loop() {
	defer n.wg.Done()
	for {
		select {
		case fn := <-n.tasks:
			fn()
		case <-n.done:
			// Drain whatever is already queued, then exit.
			for {
				select {
				case fn := <-n.tasks:
					fn()
				default:
					return
				}
			}
		}
	}
}

// read pumps datagrams from the socket onto the executor.
func (n *Node) read() {
	defer n.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		sz, from, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		msg, err := wire.Unmarshal(buf[:sz])
		if err != nil {
			n.mu.Lock()
			n.decodeErrors++
			n.mu.Unlock()
			continue
		}
		fromAddr, ok := netip.AddrFromSlice(from.IP.To4())
		if !ok {
			continue
		}
		n.mu.Lock()
		n.received++
		h := n.handler
		n.mu.Unlock()
		if h == nil {
			continue
		}
		n.post(func() { h.HandleMessage(fromAddr, msg) })
	}
}

// sendBufs pools marshal buffers: Send runs on many executors concurrently
// and must not allocate a fresh datagram buffer per call.
var sendBufs = sync.Pool{New: func() any {
	b := make([]byte, 0, 2048)
	return &b
}}

// Send implements node.Env: marshal and transmit to the peer's loopback
// address on the shared port.
func (n *Node) Send(to netip.Addr, msg wire.Message) {
	bp := sendBufs.Get().(*[]byte)
	data := wire.AppendMarshal((*bp)[:0], msg)
	_, err := n.conn.WriteToUDP(data, &net.UDPAddr{IP: to.AsSlice(), Port: int(n.port)})
	*bp = data
	sendBufs.Put(bp)
	if err == nil {
		n.mu.Lock()
		n.sent++
		n.mu.Unlock()
	}
}

// After implements node.Env; the callback runs on the executor.
func (n *Node) After(d time.Duration, fn func()) node.Cancel {
	t := time.AfterFunc(d, func() { n.post(fn) })
	return t.Stop
}

// Every implements node.Env; the callback runs on the executor.
func (n *Node) Every(d time.Duration, fn func()) node.Cancel {
	ticker := time.NewTicker(d)
	stop := make(chan struct{})
	var once sync.Once
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			select {
			case <-ticker.C:
				n.post(fn)
			case <-stop:
				return
			case <-n.done:
				return
			}
		}
	}()
	return func() bool {
		cancelled := false
		once.Do(func() {
			ticker.Stop()
			close(stop)
			cancelled = true
		})
		return cancelled
	}
}

// Close shuts the socket and stops the executor, waiting for goroutines.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	err := n.conn.Close()
	close(n.done)
	n.wg.Wait()
	return err
}

// Do runs fn on the node's executor and waits for it — the safe way for
// external code to inspect protocol state owned by the executor.
func (n *Node) Do(fn func()) {
	doneCh := make(chan struct{})
	n.post(func() {
		fn()
		close(doneCh)
	})
	select {
	case <-doneCh:
	case <-n.done:
	}
}

// udpAddr returns the node's socket address (test helper).
func (n *Node) udpAddr() *net.UDPAddr {
	return &net.UDPAddr{IP: n.addr.AsSlice(), Port: int(n.port)}
}
