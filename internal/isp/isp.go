// Package isp defines the ISP taxonomy the paper's analysis is grouped by.
//
// The paper's notation: TELE is ChinaTelecom, CNC is ChinaNetcom, CER is
// CERNET (China Education and Research Network), OtherCN covers smaller
// Chinese ISPs (China Unicom, China Railway Internet, ...), and Foreign
// covers ISPs outside China. Response-time figures further collapse
// CER+OtherCN+Foreign into an OTHER group relative to the probe.
package isp

import "fmt"

// ISP identifies one of the paper's ISP categories.
type ISP int

// The ISP categories used throughout the paper.
const (
	TELE    ISP = iota + 1 // ChinaTelecom
	CNC                    // ChinaNetcom
	CER                    // CERNET
	OtherCN                // smaller Chinese ISPs
	Foreign                // ISPs outside China
)

// All lists every category in presentation order (the order the paper's bar
// charts use).
func All() []ISP { return []ISP{TELE, CNC, CER, OtherCN, Foreign} }

// Count is the number of ISP categories.
const Count = 5

// String returns the paper's label for the category.
func (i ISP) String() string {
	switch i {
	case TELE:
		return "TELE"
	case CNC:
		return "CNC"
	case CER:
		return "CER"
	case OtherCN:
		return "OtherCN"
	case Foreign:
		return "Foreign"
	default:
		return fmt.Sprintf("ISP(%d)", int(i))
	}
}

// Valid reports whether i is one of the defined categories.
func (i ISP) Valid() bool { return i >= TELE && i <= Foreign }

// Domestic reports whether the ISP is inside China.
func (i ISP) Domestic() bool { return i == TELE || i == CNC || i == CER || i == OtherCN }

// Group is the three-way grouping used by the response-time analysis
// (Figs. 7-10): replies are grouped as TELE, CNC, or OTHER (= CER + OtherCN
// + Foreign).
type Group int

// Response-time groups.
const (
	GroupTELE Group = iota + 1
	GroupCNC
	GroupOTHER
)

// Groups lists the response-time groups in presentation order.
func Groups() []Group { return []Group{GroupTELE, GroupCNC, GroupOTHER} }

// String returns the group label.
func (g Group) String() string {
	switch g {
	case GroupTELE:
		return "TELE"
	case GroupCNC:
		return "CNC"
	case GroupOTHER:
		return "OTHER"
	default:
		return fmt.Sprintf("Group(%d)", int(g))
	}
}

// GroupOf maps an ISP category to its response-time group.
func GroupOf(i ISP) Group {
	switch i {
	case TELE:
		return GroupTELE
	case CNC:
		return GroupCNC
	default:
		return GroupOTHER
	}
}
