package isp

import "testing"

func TestAllCategories(t *testing.T) {
	all := All()
	if len(all) != Count {
		t.Fatalf("All() has %d entries, Count = %d", len(all), Count)
	}
	seen := map[ISP]bool{}
	for _, c := range all {
		if !c.Valid() {
			t.Errorf("%v not valid", c)
		}
		if seen[c] {
			t.Errorf("%v duplicated", c)
		}
		seen[c] = true
		if c.String() == "" {
			t.Errorf("%v has empty name", c)
		}
	}
	if ISP(0).Valid() || ISP(99).Valid() {
		t.Error("out-of-range values reported valid")
	}
}

func TestStringsMatchPaperNotation(t *testing.T) {
	cases := map[ISP]string{
		TELE: "TELE", CNC: "CNC", CER: "CER", OtherCN: "OtherCN", Foreign: "Foreign",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
	if ISP(42).String() == "" {
		t.Error("unknown ISP String empty")
	}
}

func TestDomestic(t *testing.T) {
	for _, c := range []ISP{TELE, CNC, CER, OtherCN} {
		if !c.Domestic() {
			t.Errorf("%v not domestic", c)
		}
	}
	if Foreign.Domestic() {
		t.Error("Foreign reported domestic")
	}
}

func TestGroupOf(t *testing.T) {
	cases := map[ISP]Group{
		TELE:    GroupTELE,
		CNC:     GroupCNC,
		CER:     GroupOTHER,
		OtherCN: GroupOTHER,
		Foreign: GroupOTHER,
	}
	for c, want := range cases {
		if got := GroupOf(c); got != want {
			t.Errorf("GroupOf(%v) = %v, want %v", c, got, want)
		}
	}
	if len(Groups()) != 3 {
		t.Errorf("Groups() = %v", Groups())
	}
	for _, g := range Groups() {
		if g.String() == "" {
			t.Errorf("group %d has empty name", g)
		}
	}
	if Group(9).String() == "" {
		t.Error("unknown group String empty")
	}
}
