package tracefile

import (
	"bytes"
	"math/rand"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"pplivesim/internal/capture"
	"pplivesim/internal/wire"
)

func sampleRecords() []capture.Record {
	return []capture.Record{
		{
			At: 1500 * time.Millisecond, Dir: capture.Out,
			Peer: netip.MustParseAddr("58.32.0.2"),
			Type: wire.TDataRequest, Size: 27, Seq: 42, Count: 1,
		},
		{
			At: 1600 * time.Millisecond, Dir: capture.In,
			Peer: netip.MustParseAddr("58.32.0.2"),
			Type: wire.TDataReply, Size: 1410, Seq: 42, Count: 1, Payload: 1380,
		},
		{
			At: 2 * time.Second, Dir: capture.In,
			Peer: netip.MustParseAddr("61.128.0.1"),
			Type: wire.TTrackerResponse, Size: 260,
			Addrs: []netip.Addr{
				netip.MustParseAddr("1.2.3.4"),
				netip.MustParseAddr("5.6.7.8"),
			},
		},
	}
}

func sampleHeader() Header {
	return Header{
		Probe:    "tele",
		ProbeISP: "TELE",
		Source:   "58.32.9.9",
		Trackers: []string{"61.128.0.1", "60.0.0.1"},
		Channel:  1,
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleHeader(), sampleRecords()); err != nil {
		t.Fatal(err)
	}
	hdr, records, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Probe != "tele" || hdr.Channel != 1 || hdr.Format != FormatV1 {
		t.Errorf("header = %+v", hdr)
	}
	if !reflect.DeepEqual(records, sampleRecords()) {
		t.Errorf("records round trip mismatch:\n got %+v\nwant %+v", records, sampleRecords())
	}
}

func TestHeaderParseAddrs(t *testing.T) {
	source, trackers, err := sampleHeader().ParseAddrs()
	if err != nil {
		t.Fatal(err)
	}
	if source != netip.MustParseAddr("58.32.9.9") {
		t.Errorf("source = %v", source)
	}
	if len(trackers) != 2 || !trackers[netip.MustParseAddr("60.0.0.1")] {
		t.Errorf("trackers = %v", trackers)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad header":  "not json\n",
		"bad format":  `{"format":"other/9"}` + "\n",
		"bad line":    `{"format":"pplive-trace/1"}` + "\nnot json\n",
		"bad dir":     `{"format":"pplive-trace/1"}` + "\n" + `{"dir":"sideways","peer":"1.2.3.4"}` + "\n",
		"bad peer":    `{"format":"pplive-trace/1"}` + "\n" + `{"dir":"in","peer":"nope"}` + "\n",
		"bad address": `{"format":"pplive-trace/1"}` + "\n" + `{"dir":"in","peer":"1.2.3.4","addrs":["x"]}` + "\n",
	}
	for name, input := range cases {
		if _, _, err := Read(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMatchableAfterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleHeader(), sampleRecords()); err != nil {
		t.Fatal(err)
	}
	hdr, records, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	_, trackers, err := hdr.ParseAddrs()
	if err != nil {
		t.Fatal(err)
	}
	m := capture.Match(records, trackers)
	if len(m.Transmissions) != 1 {
		t.Errorf("matched %d transmissions after round trip", len(m.Transmissions))
	}
	if len(m.TrackerLists) != 1 {
		t.Errorf("matched %d tracker lists after round trip", len(m.TrackerLists))
	}
}

// Property: arbitrary records survive the round trip.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50)
		records := make([]capture.Record, 0, n)
		for i := 0; i < n; i++ {
			rec := capture.Record{
				At:   time.Duration(rng.Int63n(int64(time.Hour))),
				Dir:  capture.Direction(1 + rng.Intn(2)),
				Peer: netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}),
				Type: wire.Type(1 + rng.Intn(14)),
				Size: rng.Intn(2000),
				Seq:  rng.Uint64(),
			}
			// JSON drops sub-microsecond precision by design; stay on-grid.
			rec.At = rec.At.Truncate(time.Microsecond)
			records = append(records, rec)
		}
		var buf bytes.Buffer
		if err := Write(&buf, sampleHeader(), records); err != nil {
			return false
		}
		_, got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(records) {
			return false
		}
		for i := range records {
			if got[i].At != records[i].At || got[i].Peer != records[i].Peer ||
				got[i].Dir != records[i].Dir || got[i].Seq != records[i].Seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}
