// Package tracefile persists probe packet traces as JSON lines, one
// captured datagram per line — the workflow of the paper's methodology,
// where Wireshark captures were saved and analyzed offline. cmd/tracegen
// writes this format and cmd/analyze consumes it.
package tracefile

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"time"

	"pplivesim/internal/capture"
	"pplivesim/internal/wire"
)

// Header is the first line of a trace file: capture context needed to
// re-run the analysis (probe identity, tracker set, source address).
type Header struct {
	Format   string   `json:"format"` // "pplive-trace/1"
	Probe    string   `json:"probe"`
	ProbeISP string   `json:"probeIsp"`
	Source   string   `json:"source"`
	Trackers []string `json:"trackers"`
	Channel  uint32   `json:"channel"`
}

// FormatV1 identifies the current trace format.
const FormatV1 = "pplive-trace/1"

// Line is the JSON form of one captured datagram.
type Line struct {
	AtMicros int64    `json:"atMicros"`
	Dir      string   `json:"dir"` // "in" or "out"
	Peer     string   `json:"peer"`
	Type     byte     `json:"type"`
	TypeName string   `json:"typeName,omitempty"`
	Size     int      `json:"size"`
	Seq      uint64   `json:"seq,omitempty"`
	Count    uint16   `json:"count,omitempty"`
	Payload  int      `json:"payload,omitempty"`
	Addrs    []string `json:"addrs,omitempty"`
}

// Write serializes a header and records to w.
func Write(w io.Writer, hdr Header, records []capture.Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hdr.Format = FormatV1
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("tracefile: write header: %w", err)
	}
	for i, rec := range records {
		l := Line{
			AtMicros: rec.At.Microseconds(),
			Dir:      rec.Dir.String(),
			Peer:     rec.Peer.String(),
			Type:     byte(rec.Type),
			TypeName: rec.Type.String(),
			Size:     rec.Size,
			Seq:      rec.Seq,
			Count:    rec.Count,
			Payload:  rec.Payload,
		}
		for _, a := range rec.Addrs {
			l.Addrs = append(l.Addrs, a.String())
		}
		if err := enc.Encode(l); err != nil {
			return fmt.Errorf("tracefile: write record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses a trace file back into a header and records.
func Read(r io.Reader) (Header, []capture.Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return Header{}, nil, err
		}
		return Header{}, nil, fmt.Errorf("tracefile: empty input")
	}
	var hdr Header
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return Header{}, nil, fmt.Errorf("tracefile: parse header: %w", err)
	}
	if hdr.Format != FormatV1 {
		return Header{}, nil, fmt.Errorf("tracefile: unsupported format %q", hdr.Format)
	}

	var records []capture.Record
	lineNo := 1
	for sc.Scan() {
		lineNo++
		var l Line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			return Header{}, nil, fmt.Errorf("tracefile: line %d: %w", lineNo, err)
		}
		rec := capture.Record{
			At:      time.Duration(l.AtMicros) * time.Microsecond,
			Type:    wire.Type(l.Type),
			Size:    l.Size,
			Seq:     l.Seq,
			Count:   l.Count,
			Payload: l.Payload,
		}
		switch l.Dir {
		case "in":
			rec.Dir = capture.In
		case "out":
			rec.Dir = capture.Out
		default:
			return Header{}, nil, fmt.Errorf("tracefile: line %d: bad direction %q", lineNo, l.Dir)
		}
		peer, err := netip.ParseAddr(l.Peer)
		if err != nil {
			return Header{}, nil, fmt.Errorf("tracefile: line %d: peer: %w", lineNo, err)
		}
		rec.Peer = peer
		for _, s := range l.Addrs {
			a, err := netip.ParseAddr(s)
			if err != nil {
				return Header{}, nil, fmt.Errorf("tracefile: line %d: addr: %w", lineNo, err)
			}
			rec.Addrs = append(rec.Addrs, a)
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return Header{}, nil, err
	}
	return hdr, records, nil
}

// ParseAddrs converts the header's string addresses back to netip values.
func (h Header) ParseAddrs() (source netip.Addr, trackers map[netip.Addr]bool, err error) {
	if h.Source != "" {
		source, err = netip.ParseAddr(h.Source)
		if err != nil {
			return netip.Addr{}, nil, fmt.Errorf("tracefile: source: %w", err)
		}
	}
	trackers = make(map[netip.Addr]bool, len(h.Trackers))
	for _, s := range h.Trackers {
		a, err := netip.ParseAddr(s)
		if err != nil {
			return netip.Addr{}, nil, fmt.Errorf("tracefile: tracker: %w", err)
		}
		trackers[a] = true
	}
	return source, trackers, nil
}
