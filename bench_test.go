// Benchmarks: one per table and figure of the paper's evaluation (see
// DESIGN.md's experiment index), each running a reduced-scale version of the
// corresponding experiment and reporting its headline statistic as a custom
// metric. Paper-scale regeneration is `go run ./cmd/experiments`.
//
// Scenario benchmarks are whole-system runs (hundreds of peers, minutes of
// virtual time), so each iteration is seconds of wall time; run with the
// default -benchtime or -benchtime=1x.
package pplive_test

import (
	"testing"
	"time"

	"pplivesim"
	"pplivesim/internal/bittorrent"
	"pplivesim/internal/experiments"
	"pplivesim/internal/isp"
	"pplivesim/internal/workload"
)

// benchScale sizes every scenario benchmark.
func benchScale() experiments.Scale {
	s := experiments.QuickScale()
	s.Fig6Days = 2
	return s
}

// runProbeBench runs the popular or unpopular quick scenario and reports the
// given probe's metrics.
func runProbeBench(b *testing.B, popular bool, probe string, metric func(*pplive.Report) (string, float64)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		runner := experiments.NewRunner(benchScale(), int64(100+i))
		var out *experiments.RunOutputs
		var err error
		if popular {
			out, err = runner.Popular()
		} else {
			out, err = runner.Unpopular()
		}
		if err != nil {
			b.Fatal(err)
		}
		rep := out.Reports[probe]
		if rep == nil {
			b.Fatal("missing probe report")
		}
		name, value := metric(rep)
		b.ReportMetric(value, name)
		b.ReportMetric(float64(out.Result.EventsProcessed)/float64(b.N), "events")
	}
}

// localityMetric reports traffic locality in percent.
func localityMetric(rep *pplive.Report) (string, float64) {
	return "locality_%", 100 * rep.TrafficLocality
}

func BenchmarkFig2TELEPopular(b *testing.B) {
	runProbeBench(b, true, experiments.ProbeTELE, localityMetric)
}

func BenchmarkFig3TELEUnpopular(b *testing.B) {
	runProbeBench(b, false, experiments.ProbeTELE, localityMetric)
}

func BenchmarkFig4MasonPopular(b *testing.B) {
	runProbeBench(b, true, experiments.ProbeMason, localityMetric)
}

func BenchmarkFig5MasonUnpopular(b *testing.B) {
	runProbeBench(b, false, experiments.ProbeMason, localityMetric)
}

func BenchmarkFig6FourWeeks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runner := experiments.NewRunner(benchScale(), int64(200+i))
		popular, unpopular, err := runner.Fig6(nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(popular) == 0 || len(unpopular) == 0 {
			b.Fatal("fig6 produced no points")
		}
		var sum float64
		for _, pt := range popular {
			sum += pt.Locality
		}
		b.ReportMetric(100*sum/float64(len(popular)), "mean_popular_locality_%")
	}
}

func BenchmarkFig7to10ResponseTimes(b *testing.B) {
	runProbeBench(b, true, experiments.ProbeTELE, func(rep *pplive.Report) (string, float64) {
		return "tele_list_rt_ms", float64(rep.ListRT[isp.GroupTELE].Mean.Milliseconds())
	})
}

func BenchmarkTable1DataResponse(b *testing.B) {
	runProbeBench(b, true, experiments.ProbeTELE, func(rep *pplive.Report) (string, float64) {
		return "tele_data_rt_ms", float64(rep.DataRT[isp.GroupTELE].Mean.Milliseconds())
	})
}

func BenchmarkFig11Contributions(b *testing.B) {
	runProbeBench(b, true, experiments.ProbeTELE, func(rep *pplive.Report) (string, float64) {
		return "top10_request_share_%", 100 * rep.TopRequestShare
	})
}

func BenchmarkFig12Contributions(b *testing.B) {
	runProbeBench(b, false, experiments.ProbeTELE, func(rep *pplive.Report) (string, float64) {
		return "top10_request_share_%", 100 * rep.TopRequestShare
	})
}

func BenchmarkFig13Contributions(b *testing.B) {
	runProbeBench(b, true, experiments.ProbeMason, func(rep *pplive.Report) (string, float64) {
		return "se_r2", rep.SEFit.R2
	})
}

func BenchmarkFig14Contributions(b *testing.B) {
	runProbeBench(b, false, experiments.ProbeMason, func(rep *pplive.Report) (string, float64) {
		return "top10_byte_share_%", 100 * rep.TopByteShare
	})
}

func BenchmarkFig15to18RTTCorrelation(b *testing.B) {
	runProbeBench(b, true, experiments.ProbeTELE, func(rep *pplive.Report) (string, float64) {
		return "rtt_corr", rep.RTTCorrelation
	})
}

func BenchmarkAblationReferral(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runner := experiments.NewRunner(benchScale(), int64(300+i))
		out, err := runner.AblationReferral()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*out.Baseline, "with_referral_%")
		b.ReportMetric(100*out.Ablated, "tracker_only_%")
	}
}

func BenchmarkAblationLatencyBias(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runner := experiments.NewRunner(benchScale(), int64(400+i))
		out, err := runner.AblationLatencyBias()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*out.Baseline, "with_bias_%")
		b.ReportMetric(100*out.Ablated, "random_%")
	}
}

func BenchmarkAblationFidelity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runner := experiments.NewRunner(benchScale(), int64(500+i))
		out, err := runner.AblationFidelity()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(out.FullEvents)/float64(out.CoarseEvents), "event_ratio")
		b.ReportMetric(100*(out.FullLocality-out.CoarseLocality), "locality_delta_pp")
	}
}

func BenchmarkBitTorrentBaseline(b *testing.B) {
	viewers := workload.PopularPopulation().Scale(0.08)
	for i := 0; i < b.N; i++ {
		res, err := bittorrent.RunLocality(int64(600+i), viewers, isp.TELE, 15*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Locality, "locality_%")
		b.ReportMetric(100*res.Progress, "progress_%")
	}
}
