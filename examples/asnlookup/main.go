// ASN lookup: resolve peer addresses through the IP→ASN mapping service
// over the simulated wire — the measurement pipeline's Team Cymru step —
// and show the client-side cache at work.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"pplivesim/internal/asnmap"
	"pplivesim/internal/isp"
	"pplivesim/internal/simnet"
)

func main() {
	w := simnet.NewWorld(1)
	w.CodecCheck = true // every datagram rides the real codec

	srvEnv, err := w.Spawn(simnet.HostSpec{ISP: isp.TELE, UploadBps: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	service := asnmap.NewService(srvEnv, asnmap.SyntheticInternet())
	srvEnv.SetHandler(service)

	cliEnv, err := w.Spawn(simnet.HostSpec{ISP: isp.Foreign, UploadBps: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	client := asnmap.NewClient(cliEnv, srvEnv.Addr())
	cliEnv.SetHandler(client)

	addrs := []string{
		"58.40.1.2",     // China Telecom
		"60.1.2.3",      // China Netcom
		"59.66.1.1",     // CERNET
		"129.174.10.20", // George Mason campus
		"58.40.1.2",     // repeat → served from cache
		"192.0.2.1",     // unregistered
	}
	for _, s := range addrs {
		addr := netip.MustParseAddr(s)
		client.Resolve(addr, func(rec asnmap.Record, found bool) {
			if found {
				fmt.Printf("%-15s -> AS%-5d %-8s %-30s (t=%v)\n",
					addr, rec.ASN, rec.ISP, rec.Name, w.Engine.Now().Round(time.Millisecond))
			} else {
				fmt.Printf("%-15s -> no origin AS registered (t=%v)\n",
					addr, w.Engine.Now().Round(time.Millisecond))
			}
		})
	}

	if err := w.Engine.Run(time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nservice answered %d queries; client cached %d records\n",
		service.Queries(), client.CacheSize())
}
