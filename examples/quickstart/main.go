// Quickstart: run a small popular-channel swarm with one TELE probe and
// print the paper's headline result — ISP-level traffic locality emerging
// from decentralized, latency-based, neighbor-referral peer selection.
package main

import (
	"fmt"
	"log"
	"time"

	"pplivesim"
)

func main() {
	// A quarter-scale popular channel (~330 concurrent viewers) watched for
	// 15 minutes by one probe in China Telecom.
	sc := pplive.PopularScenario(42, 0.25)
	sc.Watch = 15 * time.Minute
	sc.WarmUp = 6 * time.Minute
	sc.ArrivalWindow = 3 * time.Minute
	sc.Probes = []pplive.ProbeSpec{{Name: "tele-probe", ISP: pplive.TELE}}

	fmt.Printf("running %d-viewer swarm, %s watch...\n", sc.Viewers.Total(), sc.Watch)
	res, err := pplive.RunScenario(sc)
	if err != nil {
		log.Fatal(err)
	}

	rep, err := pplive.AnalyzeProbe(res, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nprobe %s (%s):\n", res.Probes[0].Name, res.Probes[0].ISP)
	fmt.Printf("  returned peer addresses from same ISP: %.1f%%\n", 100*rep.PotentialLocality)
	fmt.Printf("  downloaded bytes from same ISP:        %.1f%%\n", 100*rep.TrafficLocality)
	fmt.Printf("  top 10%% of peers supplied:             %.1f%% of bytes\n", 100*rep.TopByteShare)
	fmt.Printf("  correlation(log requests, log RTT):    %.3f\n", rep.RTTCorrelation)
	fmt.Printf("  playback continuity:                   %.3f\n",
		res.Probes[0].Client.BufferStats().Continuity())
}
