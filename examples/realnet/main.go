// Realnet: the exact same bootstrap, tracker, source, and client
// implementations that power the discrete-event study — here running over
// real UDP sockets. Each node binds its own loopback address (127.0.0.x) on
// a shared port, streams a live channel for ~25 seconds of wall time, and
// reports playback continuity and locality-relevant counters.
//
// Requires the ability to bind 127.0.0.0/8 loopback aliases (standard on
// Linux).
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"pplivesim/internal/peer"
	"pplivesim/internal/stream"
	"pplivesim/internal/tracker"
	"pplivesim/internal/udpnet"
)

const port = 42890

func listen(last byte) *udpnet.Node {
	n, err := udpnet.Listen(netip.AddrFrom4([4]byte{127, 0, 0, last}), port)
	if err != nil {
		log.Fatalf("bind 127.0.0.%d: %v (loopback aliases required)", last, err)
	}
	return n
}

// realtimeConfig shortens protocol timers so a 25-second demo exercises the
// whole join → gossip → stream pipeline.
func realtimeConfig(spec stream.Spec, bootstrap netip.Addr) peer.Config {
	cfg := peer.DefaultConfig(spec, bootstrap)
	cfg.StartupDelay = 3 * time.Second
	cfg.GossipInterval = 5 * time.Second
	cfg.TrackerIntervalStartup = 4 * time.Second
	cfg.BufferMapInterval = 2 * time.Second
	cfg.SchedInterval = 100 * time.Millisecond
	cfg.FetchLead = 6 * time.Second
	cfg.SourcePrefetchProb = 0.05
	return cfg
}

func main() {
	spec := stream.DefaultSpec(1, "realnet-demo", 100)

	// Infrastructure: bootstrap (127.0.0.2), one tracker (127.0.0.3) backing
	// all five groups, and the stream source (127.0.0.4).
	bsNode := listen(2)
	defer bsNode.Close()
	bs := tracker.NewBootstrap(bsNode)
	bsNode.SetHandler(bs)

	trkNode := listen(3)
	defer trkNode.Close()
	trkNode.SetHandler(tracker.NewServer(trkNode))

	srcNode := listen(4)
	defer srcNode.Close()
	src, err := peer.NewSource(srcNode, spec)
	if err != nil {
		log.Fatal(err)
	}
	srcNode.SetHandler(src)

	var groups [tracker.Groups][]netip.Addr
	for g := range groups {
		groups[g] = []netip.Addr{trkNode.Addr()}
	}
	err = bs.AddChannel(tracker.ChannelDirectory{
		Info:          spec.Info(),
		Source:        srcNode.Addr(),
		TrackerGroups: groups,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Six clients joining a few seconds apart.
	type client struct {
		node   *udpnet.Node
		client *peer.Client
	}
	var clients []client
	for i := 0; i < 6; i++ {
		n := listen(byte(10 + i))
		defer n.Close()
		c, err := peer.New(n, realtimeConfig(spec, bsNode.Addr()))
		if err != nil {
			log.Fatal(err)
		}
		n.SetHandler(c)
		clients = append(clients, client{node: n, client: c})
		n.Do(c.Start)
		fmt.Printf("client %v joined\n", n.Addr())
		time.Sleep(1500 * time.Millisecond)
	}

	fmt.Println("\nstreaming over real UDP for 15 seconds...")
	time.Sleep(15 * time.Second)

	fmt.Println()
	for _, cl := range clients {
		var bufStats stream.Stats
		var protoStats peer.Stats
		var neighbors int
		cl.node.Do(func() {
			bufStats = cl.client.BufferStats()
			protoStats = cl.client.Stats()
			neighbors = cl.client.NumNeighbors()
		})
		sent, received, decodeErrs := cl.node.Stats()
		fmt.Printf("client %v: continuity %.2f, %d neighbors, %d pieces received, "+
			"%d/%d datagrams out/in (%d decode errors)\n",
			cl.node.Addr(), bufStats.Continuity(), neighbors,
			protoStats.DataRepliesGot, sent, received, decodeErrs)
	}
	served, bytes := src.Stats()
	fmt.Printf("source: served %d requests (%d KiB) over real sockets\n", served, bytes>>10)
}
