// Popular vs unpopular: the paper's core contrast (Figures 2 vs 3). A TELE
// probe and a Mason (US campus) probe watch a popular and an unpopular
// channel; locality is strong for the popular channel and degrades when
// there are too few same-ISP viewers — exactly the paper's Figure 3/5 story.
package main

import (
	"fmt"
	"log"
	"time"

	"pplivesim"
)

func run(name string, sc pplive.Scenario) {
	sc.Watch = 15 * time.Minute
	sc.WarmUp = 6 * time.Minute
	sc.ArrivalWindow = 3 * time.Minute
	sc.Probes = []pplive.ProbeSpec{
		{Name: "tele", ISP: pplive.TELE},
		{Name: "mason", ISP: pplive.Foreign},
	}
	fmt.Printf("== %s channel: %d concurrent viewers ==\n", name, sc.Viewers.Total())
	res, err := pplive.RunScenario(sc)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range res.Probes {
		rep, err := pplive.AnalyzeProbe(res, i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  probe %-5s (%s): potential locality %5.1f%%  traffic locality %5.1f%%\n",
			p.Name, p.ISP, 100*rep.PotentialLocality, 100*rep.TrafficLocality)
	}
	fmt.Println()
}

func main() {
	run("popular", pplive.PopularScenario(7, 0.25))
	run("unpopular", pplive.UnpopularScenario(7, 1.0))
	fmt.Println("expectation (paper §3.2): popular-channel locality is high for both probes;")
	fmt.Println("unpopular-channel locality degrades, most severely for the Mason probe,")
	fmt.Println("because too few same-ISP viewers watch the same niche program.")
}
