// Locality vs BitTorrent: contrast PPLive-style referral+latency selection
// against the tracker-only BitTorrent baseline over the same underlay and
// the same audience — the architectural comparison of the paper's
// introduction and related-work sections.
package main

import (
	"fmt"
	"log"
	"time"

	"pplivesim"
	"pplivesim/internal/bittorrent"
	"pplivesim/internal/isp"
	"pplivesim/internal/workload"
)

func main() {
	const scale = 0.2
	viewers := workload.PopularPopulation().Scale(scale)
	fmt.Printf("audience: %d peers (%.0f%% TELE); probe in TELE\n\n",
		viewers.Total(), 100*float64(viewers[isp.TELE])/float64(viewers.Total()))

	// PPLive-style streaming swarm.
	sc := pplive.PopularScenario(7, scale)
	sc.Watch = 15 * time.Minute
	sc.WarmUp = 6 * time.Minute
	sc.ArrivalWindow = 3 * time.Minute
	sc.Probes = []pplive.ProbeSpec{{Name: "tele", ISP: pplive.TELE}}
	res, err := pplive.RunScenario(sc)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := pplive.AnalyzeProbe(res, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PPLive-style (referral + latency-based selection):\n")
	fmt.Printf("  traffic locality: %.1f%%\n\n", 100*rep.TrafficLocality)

	// Same audience, BitTorrent rules.
	bt, err := bittorrent.RunLocality(7, viewers, isp.TELE, 25*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BitTorrent baseline (tracker-only + tit-for-tat + rarest-first):\n")
	fmt.Printf("  traffic locality: %.1f%% (probe completed %.0f%% of the file)\n\n",
		100*bt.Locality, 100*bt.Progress)

	fmt.Println("expectation (paper §1): the referral-based overlay localizes traffic far")
	fmt.Println("above the audience's same-ISP share; the tracker-only overlay stays at it.")
}
